#include "run/spec.hpp"

#include <cstdio>
#include <unordered_map>

#include "power/profile.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

/// Canonical seed for synthetic power-profile assignment when neither the
/// spec nor the workload seed pins one (the bench loader's historical
/// default; changing it would silently change every default bench table).
constexpr std::uint64_t kCanonicalPowerSeed = 0xe5c4edULL;

/// Exact (hexfloat) rendering of a double for key strings — two doubles
/// map to the same token iff they are bit-equal (modulo -0.0/0.0, which
/// no spec field distinguishes).
std::string key_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

trace::Trace build_trace(const TraceSpec& spec) {
  trace::Trace trace =
      spec.source == "swf"
          ? trace::swf::load_file(spec.swf_path)
          : trace::make_workload_by_name(
                spec.source, static_cast<std::size_t>(spec.months),
                spec.seed);

  // Power-profile policy, shared verbatim with bench::load_workload (which
  // delegates here): keep real profiles (a PowerColumn SWF, the Mira
  // generator) unless the ratio was forced; assign the paper's synthetic
  // draw when the trace carries none.
  bool has_power = false;
  for (const trace::Job& j : trace.jobs()) {
    if (j.power_per_node > 0.0) {
      has_power = true;
      break;
    }
  }
  if (!has_power || spec.force_power_ratio) {
    power::ProfileConfig cfg;
    cfg.ratio = spec.power_ratio;
    if (has_power) {
      power::rescale_profiles(trace, cfg.min_watts_per_node, cfg.ratio);
    } else {
      power::assign_profiles(
          trace, cfg,
          spec.power_seed != 0 ? spec.power_seed : kCanonicalPowerSeed);
    }
  }
  return trace;
}

std::unique_ptr<power::PricingModel> build_pricing(const PricingSpec& spec) {
  return power::make_pricing_by_name(spec.model, spec.off_peak_price,
                                     spec.ratio);
}

std::unique_ptr<core::SchedulingPolicy> build_policy(const PolicySpec& spec) {
  return core::make_policy_by_name(spec.name);
}

sim::SimResult execute_job_spec(const JobSpec& spec) {
  const trace::Trace trace = build_trace(spec.trace);
  const std::unique_ptr<power::PricingModel> pricing =
      build_pricing(spec.pricing);
  const std::unique_ptr<core::SchedulingPolicy> policy =
      build_policy(spec.policy);
  sim::SimConfig config = spec.config;
  // Pointers never cross the wire; a decoded spec has both null already,
  // but execute may also be handed a locally built spec.
  config.tracer = nullptr;
  config.facility_model = nullptr;
  return sim::simulate(trace, *pricing, *policy, config);
}

std::string share_key(const JobSpec& spec) {
  // Every field that can change the scheduling trajectory, rendered
  // exactly. Tariff prices are deliberately absent: the scheduler sees
  // only the period structure, and all spec-constructible tariffs of one
  // model share it ("paper"/"onoff" both mean OnOffPeakPricing with the
  // paper's default windows; "flat" has its own). config.tracer and
  // config.facility_model never appear in a shareable cell (callers gate
  // on both being null — tracing is observability-only anyway, and a
  // facility model would make metering non-replayable here).
  const TraceSpec& t = spec.trace;
  const sim::SimConfig& c = spec.config;
  const core::SchedulerConfig& s = c.scheduler;
  std::string key;
  key.reserve(192);
  key += "trace:";
  key += t.source;
  key += ',';
  key += t.swf_path;
  key += ',';
  key += std::to_string(t.months);
  key += ',';
  key += std::to_string(t.seed);
  key += ',';
  key += key_double(t.power_ratio);
  key += ',';
  key += t.force_power_ratio ? '1' : '0';
  key += ',';
  key += std::to_string(t.power_seed);
  key += "|policy:";
  key += spec.policy.name;
  key += "|cfg:";
  key += std::to_string(c.tick_interval);
  key += ',';
  key += key_double(c.idle_watts_per_node);
  key += ',';
  key += c.contiguous_allocation ? '1' : '0';
  key += c.honor_queue_priority ? '1' : '0';
  key += c.honor_dependencies ? '1' : '0';
  key += ',';
  key += std::to_string(c.max_passes_per_tick);
  key += ',';
  key += c.record_daily_curves ? '1' : '0';
  key += ',';
  key += std::to_string(c.daily_curve_bins);
  key += "|sched:";
  key += std::to_string(s.window_size);
  key += ',';
  key += s.backfill_beyond_window ? '1' : '0';
  key += ',';
  key += std::to_string(static_cast<int>(s.backfill_mode));
  key += ',';
  key += std::to_string(s.conservative_depth);
  key += ',';
  key += std::to_string(s.starvation_age);
  key += "|periods:";
  key += spec.pricing.model == "flat" ? "flat" : "onoff-paper-default";
  return key;
}

std::string cell_key(const JobSpec& spec) {
  std::string key = share_key(spec);
  key += "|price:";
  key += key_double(spec.pricing.off_peak_price);
  // FlatPricing ignores the ratio, so two flat specs differing only in
  // ratio are the same cell.
  if (spec.pricing.model != "flat") {
    key += ',';
    key += key_double(spec.pricing.ratio);
  }
  return key;
}

CellGroups group_cells(const std::vector<JobSpec>& sweep, bool enabled) {
  CellGroups groups;
  groups.rep.resize(sweep.size());
  groups.unique_indices.reserve(sweep.size());
  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const JobSpec& spec = sweep[i];
    const bool shareable = enabled && spec.config.tracer == nullptr &&
                           spec.config.facility_model == nullptr;
    if (shareable) {
      const auto [it, inserted] =
          seen.emplace(cell_key(spec), groups.unique_indices.size());
      groups.rep[i] = it->second;
      if (!inserted) continue;
    } else {
      groups.rep[i] = groups.unique_indices.size();
    }
    groups.unique_indices.push_back(i);
  }
  return groups;
}

}  // namespace esched::run
