// The parallel experiment runner: fan a grid of independent trace-driven
// simulations (policy x trace x tariff x config — the shape of every
// table/figure sweep in bench/) across a fixed thread pool.
//
// Ownership rules (the reason the API looks the way it does):
//  * Traces and tariffs are immutable during a run and *shared read-only*
//    across tasks (`shared_ptr<const ...>`); nothing in sim/ mutates them.
//  * Policies are stateful (scratch workspaces, per-run caches), so each
//    task constructs its own instance from `make_policy` — no mutable
//    state is ever shared between workers.
//
// Determinism: run() returns results in **submission order** regardless
// of completion order, and sim::simulate is itself deterministic, so a
// sweep executed with 1 thread and with N threads produces bit-identical
// result vectors (sweep_runner_test asserts this; the TSan build of that
// test guards the threading).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "power/pricing.hpp"
#include "sim/result.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace esched::obs {
class Tracer;
}  // namespace esched::obs

namespace esched::run {

struct JobSpec;  // run/spec.hpp

/// Constructs a fresh policy instance for one task.
using PolicyFactory =
    std::function<std::unique_ptr<core::SchedulingPolicy>()>;

/// One cell of a sweep: everything sim::simulate needs, plus a label for
/// reports. `trace` and `pricing` are shared read-only and must be
/// non-null; `make_policy` is invoked once, on the worker thread.
///
/// `spec` is the optional declarative twin of the cell (run/spec.hpp):
/// when every cell of a sweep carries one, bench::run_sweep can hand the
/// sweep to the multi-process SubprocessPool instead of the in-process
/// runner. The pointer members stay authoritative in-process; the spec is
/// only consulted to rebuild the cell across a process boundary.
struct SimJob {
  std::shared_ptr<const trace::Trace> trace;
  std::shared_ptr<const power::PricingModel> pricing;
  PolicyFactory make_policy;
  sim::SimConfig config;
  std::string label;
  std::shared_ptr<const JobSpec> spec;
};

/// Counters from the last SweepRunner::run() — the measurable half of the
/// speedup story (micro_sim_throughput --sweep prints these).
struct SweepStats {
  std::size_t tasks = 0;          ///< cells executed
  std::size_t threads = 0;        ///< workers actually used
  /// Prefix-sharing breakdown (tasks == simulated + copied + rebilled):
  /// cells simulated in full, cells copied from an identical cell, and
  /// cells re-billed from a trajectory-sharing leader's power signal.
  std::size_t simulated_cells = 0;
  std::size_t copied_cells = 0;
  std::size_t rebilled_cells = 0;
  double wall_seconds = 0.0;      ///< end-to-end elapsed time
  double cpu_seconds = 0.0;       ///< sum of per-task durations
  double task_min_seconds = 0.0;
  double task_mean_seconds = 0.0;
  double task_max_seconds = 0.0;
  /// Per-worker sum of task durations, indexed by worker (size ==
  /// `threads`; the 1-thread inline path attributes everything to 0).
  std::vector<double> worker_busy_seconds;

  /// Fraction of the wall time worker `i` spent executing tasks — the
  /// load-balance picture of a sweep (0 when wall time is unmeasurable).
  double worker_busy_fraction(std::size_t i) const {
    if (i >= worker_busy_seconds.size() || wall_seconds <= 0.0) return 0.0;
    return worker_busy_seconds[i] / wall_seconds;
  }
};

/// Progress of an in-flight sweep, delivered after each completed task.
struct SweepProgress {
  std::size_t done = 0;           ///< tasks completed so far
  std::size_t total = 0;          ///< tasks submitted
  double elapsed_seconds = 0.0;   ///< since run() started
  /// Naive remaining-time estimate: elapsed / done * (total - done).
  double eta_seconds = 0.0;
};

/// Invoked after each task completes. Calls are serialized by the runner
/// (so the callback itself needs no locking) but arrive on worker
/// threads — keep it quick; rendering a stderr line is the intended use.
using ProgressCallback = std::function<void(const SweepProgress&)>;

/// Runs SimJob grids on `jobs` worker threads (0 = default_jobs()).
/// A 1-thread runner executes inline on the calling thread — the serial
/// reference the determinism test compares against.
class SweepRunner {
 public:
  explicit SweepRunner(std::size_t jobs = 0);

  /// Worker count used when the constructor gets 0: the ESCHED_JOBS
  /// environment variable if set to a positive integer, else
  /// std::thread::hardware_concurrency() (min 1).
  static std::size_t default_jobs();

  std::size_t jobs() const { return jobs_; }

  /// Execute every cell; results in submission order. Exceptions — from
  /// a task or from the progress callback — never abandon in-flight
  /// work: every submitted task still settles (runs to completion or to
  /// its own exception), and only then is the first exception in
  /// submission order rethrown. A throwing ProgressCallback therefore
  /// cannot deadlock the pool or leak half-finished tasks
  /// (sweep_runner_test pins both contracts).
  std::vector<sim::SimResult> run(const std::vector<SimJob>& sweep);

  /// Counters from the most recent run().
  const SweepStats& last_stats() const { return stats_; }

  /// Optional live progress reporting (see ProgressCallback). Replaces
  /// any previous callback; pass {} to disable.
  void set_progress(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Optional tracer: when open, every task is bracketed by a Chrome
  /// trace span on its worker's track (and simulations inherit it only
  /// if their SimConfig carries it too). Non-owning; must outlive run().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Warm-up prefix sharing (on by default; ESCHED_PREFIX_SHARE=off
  /// disables it process-wide, for differential testing). Cells carrying
  /// a JobSpec are grouped by run::share_key — cells in one group have
  /// provably identical scheduling trajectories — and by run::cell_key
  /// (fully identical cells). Per group, one leader simulates while
  /// recording its power signal; identical cells copy the leader's
  /// result, and price-level variants re-bill the signal under their own
  /// tariff (sim::rebill). The produced results are bit-identical to
  /// simulating every cell (results_identical; sweep_runner_test pins
  /// this differentially against the sharing-off path).
  void set_prefix_sharing(bool on) { prefix_sharing_ = on; }
  bool prefix_sharing() const { return prefix_sharing_; }
  /// The default: true unless ESCHED_PREFIX_SHARE=off.
  static bool prefix_sharing_default();

 private:
  std::size_t jobs_;
  SweepStats stats_;
  ProgressCallback progress_;
  obs::Tracer* tracer_ = nullptr;
  bool prefix_sharing_ = prefix_sharing_default();
};

/// Non-owning shared_ptr view of a caller-owned trace/tariff (the caller
/// must outlive the run). Lets reference-based call sites (bench::
/// run_all_policies) feed the runner without copying.
std::shared_ptr<const trace::Trace> borrow(const trace::Trace& trace);
std::shared_ptr<const power::PricingModel> borrow(
    const power::PricingModel& pricing);

/// Exact (bit-identical) comparison of two simulation results: every
/// record, bill, energy, curve and counter. The determinism contract of
/// both sim::simulate and SweepRunner is stated in terms of this.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b);

}  // namespace esched::run
