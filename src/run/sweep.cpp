#include "run/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "obs/tracer.hpp"
#include "run/spec.hpp"
#include "run/thread_pool.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

/// Warn (on stderr, once per distinct value) that ESCHED_JOBS was set but
/// unusable. Silence here cost real debugging time: a typo'd value simply
/// fell back to hardware_concurrency and sweeps "mysteriously" used the
/// wrong parallelism.
void warn_malformed_jobs_env(const char* value) {
  static std::mutex mutex;
  static std::string last_warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (last_warned == value) return;
  last_warned = value;
  std::fprintf(stderr,
               "esched: ignoring malformed ESCHED_JOBS=\"%s\" (want a "
               "positive integer); using hardware concurrency\n",
               value);
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TaskOutcome {
  sim::SimResult result;
  double seconds = 0.0;
};

/// Simulate one cell, optionally recording its power signal (for
/// trajectory-sharing leaders). With a null signal this is exactly
/// sim::simulate.
TaskOutcome execute(const SimJob& job, sim::PowerSignal* signal) {
  const auto start = Clock::now();
  std::unique_ptr<core::SchedulingPolicy> policy = job.make_policy();
  ESCHED_REQUIRE(policy != nullptr, "SimJob factory returned null policy");
  TaskOutcome out;
  sim::Simulation simulation(*job.trace, *job.pricing, *policy, job.config);
  if (signal != nullptr) simulation.record_power_signal(signal);
  out.result = simulation.finish();
  out.seconds = seconds_since(start);
  return out;
}

/// How one sweep cell gets its result.
enum class PlanKind : std::uint8_t {
  kSimulate,  ///< run the simulation (possibly recording its signal)
  kCopy,      ///< copy the result of an identical cell (same cell_key)
  kRebill,    ///< copy a share_key leader's result, re-bill its signal
};

struct CellPlan {
  PlanKind kind = PlanKind::kSimulate;
  std::size_t src = 0;         ///< leader index (kCopy / kRebill)
  bool record_signal = false;  ///< leader must record its power signal
};

/// Group the sweep by cell_key / share_key (run/spec.hpp). Only cells
/// carrying a JobSpec and free of non-shareable config (tracer, facility
/// model) participate; everything else simulates in full. Leaders always
/// precede their followers in submission order.
std::vector<CellPlan> plan_sharing(const std::vector<SimJob>& sweep,
                                   bool enabled) {
  std::vector<CellPlan> plan(sweep.size());
  if (!enabled) return plan;
  std::unordered_map<std::string, std::size_t> cell_leader;
  std::unordered_map<std::string, std::size_t> share_leader;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SimJob& job = sweep[i];
    if (job.spec == nullptr || job.config.tracer != nullptr ||
        job.config.facility_model != nullptr) {
      continue;  // not shareable; simulate in full
    }
    const std::string cell = cell_key(*job.spec);
    if (const auto it = cell_leader.find(cell); it != cell_leader.end()) {
      plan[i] = {PlanKind::kCopy, it->second, false};
      continue;
    }
    cell_leader.emplace(cell, i);
    const std::string share = share_key(*job.spec);
    if (const auto it = share_leader.find(share); it != share_leader.end()) {
      plan[i] = {PlanKind::kRebill, it->second, false};
      plan[it->second].record_signal = true;
    } else {
      share_leader.emplace(share, i);
    }
  }
  return plan;
}

}  // namespace

SweepRunner::SweepRunner(std::size_t jobs)
    : jobs_(jobs != 0 ? jobs : default_jobs()) {}

std::size_t SweepRunner::default_jobs() {
  if (const char* env = std::getenv("ESCHED_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
    warn_malformed_jobs_env(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

bool SweepRunner::prefix_sharing_default() {
  if (const char* env = std::getenv("ESCHED_PREFIX_SHARE")) {
    return std::string_view(env) != "off";
  }
  return true;
}

std::vector<sim::SimResult> SweepRunner::run(
    const std::vector<SimJob>& sweep) {
  for (const SimJob& job : sweep) {
    ESCHED_REQUIRE(job.trace != nullptr, "SimJob without a trace");
    ESCHED_REQUIRE(job.pricing != nullptr, "SimJob without a tariff");
    ESCHED_REQUIRE(static_cast<bool>(job.make_policy),
                   "SimJob without a policy factory");
  }

  const std::vector<CellPlan> plan = plan_sharing(sweep, prefix_sharing_);
  std::vector<std::size_t> leaders;
  leaders.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (plan[i].kind == PlanKind::kSimulate) leaders.push_back(i);
  }

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(jobs_, leaders.size()));
  stats_ = SweepStats{};
  stats_.tasks = sweep.size();
  stats_.threads = workers;
  stats_.simulated_cells = leaders.size();
  for (const CellPlan& p : plan) {
    if (p.kind == PlanKind::kCopy) ++stats_.copied_cells;
    if (p.kind == PlanKind::kRebill) ++stats_.rebilled_cells;
  }
  stats_.worker_busy_seconds.assign(workers, 0.0);
  const auto wall_start = Clock::now();

  // Progress state shared by the workers; the mutex serializes callback
  // invocations (the documented contract of ProgressCallback).
  std::mutex progress_mutex;
  std::size_t completed = 0;
  const auto report_progress = [&] {
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    if (!progress_) return;
    SweepProgress progress;
    progress.done = completed;
    progress.total = sweep.size();
    progress.elapsed_seconds = seconds_since(wall_start);
    progress.eta_seconds =
        progress.elapsed_seconds /
        static_cast<double>(completed) *
        static_cast<double>(sweep.size() - completed);
    progress_(progress);
  };

  // Per-index recorded power signals (non-empty only for sharing
  // leaders) and results/errors, all indexed by submission position so
  // the follower-materialization pass can address its sources directly.
  std::vector<sim::PowerSignal> signals(sweep.size());
  std::vector<TaskOutcome> outcomes(sweep.size());
  std::vector<std::exception_ptr> errors(sweep.size());

  // One task: trace span around the cell, busy-time attribution to the
  // executing worker, then the progress callback. Worker slots are
  // disjoint per thread (the inline path owns slot 0), so the busy-time
  // writes need no lock; future::get / thread join publish them.
  const auto run_task = [&](const SimJob& job, std::size_t index) {
    std::string span_name;
    if (tracer_ != nullptr) {
      span_name =
          "task:" + (job.label.empty() ? std::to_string(index) : job.label);
    }
    obs::SpanGuard span(tracer_, std::move(span_name), "sweep");
    TaskOutcome out = execute(
        job, plan[index].record_signal ? &signals[index] : nullptr);
    std::size_t slot = ThreadPool::current_index();
    if (slot >= workers) slot = 0;
    stats_.worker_busy_seconds[slot] += out.seconds;
    report_progress();
    return out;
  };

  // Settle-all-then-propagate: every submitted task runs to completion
  // (or to its own exception) before the first exception — whether it
  // came from the task itself or from a throwing progress callback — is
  // rethrown in submission order. Abandoning in-flight tasks on the
  // first failure would leave the pool half-drained and make "which
  // cells actually ran" depend on scheduling; settling first keeps
  // failure behaviour deterministic and deadlock-free.
  if (workers == 1) {
    // Inline serial execution: the reference the determinism test holds
    // the threaded path to, and free of pool overhead for --jobs 1.
    for (std::size_t i : leaders) {
      try {
        outcomes[i] = run_task(sweep[i], i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    ThreadPool pool(workers);
    std::vector<std::future<TaskOutcome>> futures;
    futures.reserve(leaders.size());
    for (std::size_t i : leaders) {
      const SimJob& job = sweep[i];
      futures.push_back(
          pool.submit([&run_task, &job, i] { return run_task(job, i); }));
    }
    // Collect in submission order; future::get rethrows task exceptions.
    // Every future is drained even after a failure so the pool is fully
    // settled before the first exception surfaces.
    for (std::size_t k = 0; k < leaders.size(); ++k) {
      try {
        outcomes[leaders[k]] = futures[k].get();
      } catch (...) {
        errors[leaders[k]] = std::current_exception();
      }
    }
  }

  // Materialize followers, ascending index. A follower's source always
  // precedes it in submission order, and copy sources may themselves be
  // re-billed followers — ascending order guarantees the source is
  // already materialized. A failed leader leaves its followers empty;
  // the leader's (earlier) exception is the one that propagates.
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (plan[i].kind == PlanKind::kSimulate) continue;
    const auto start = Clock::now();
    const std::size_t src = plan[i].src;
    if (errors[src] == nullptr) {
      try {
        outcomes[i].result = outcomes[src].result;
        if (plan[i].kind == PlanKind::kRebill) {
          sim::rebill(outcomes[i].result, signals[src], *sweep[i].pricing);
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    outcomes[i].seconds = seconds_since(start);
    stats_.worker_busy_seconds[0] += outcomes[i].seconds;
    try {
      report_progress();
    } catch (...) {
      if (errors[i] == nullptr) errors[i] = std::current_exception();
    }
  }

  std::exception_ptr first_error;
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) {
      first_error = e;
      break;
    }
  }

  stats_.wall_seconds = seconds_since(wall_start);
  std::vector<sim::SimResult> results;
  results.reserve(outcomes.size());
  if (!outcomes.empty()) {
    stats_.task_min_seconds = outcomes.front().seconds;
    stats_.task_max_seconds = outcomes.front().seconds;
  }
  for (TaskOutcome& out : outcomes) {
    stats_.cpu_seconds += out.seconds;
    stats_.task_min_seconds = std::min(stats_.task_min_seconds, out.seconds);
    stats_.task_max_seconds = std::max(stats_.task_max_seconds, out.seconds);
    results.push_back(std::move(out.result));
  }
  if (!outcomes.empty()) {
    stats_.task_mean_seconds =
        stats_.cpu_seconds / static_cast<double>(outcomes.size());
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::shared_ptr<const trace::Trace> borrow(const trace::Trace& trace) {
  return {std::shared_ptr<const void>(), &trace};
}

std::shared_ptr<const power::PricingModel> borrow(
    const power::PricingModel& pricing) {
  return {std::shared_ptr<const void>(), &pricing};
}

namespace {

bool records_identical(const sim::JobRecord& a, const sim::JobRecord& b) {
  return a.id == b.id && a.submit == b.submit && a.start == b.start &&
         a.finish == b.finish && a.nodes == b.nodes &&
         a.power_per_node == b.power_per_node && a.user == b.user;
}

}  // namespace

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.policy_name != b.policy_name || a.trace_name != b.trace_name ||
      a.system_nodes != b.system_nodes ||
      a.horizon_begin != b.horizon_begin || a.horizon_end != b.horizon_end) {
    return false;
  }
  if (a.total_bill != b.total_bill || a.bill_on_peak != b.bill_on_peak ||
      a.bill_off_peak != b.bill_off_peak ||
      a.total_energy != b.total_energy ||
      a.energy_on_peak != b.energy_on_peak ||
      a.energy_off_peak != b.energy_off_peak ||
      a.it_energy != b.it_energy) {
    return false;
  }
  if (a.scheduling_passes != b.scheduling_passes ||
      a.ticks_processed != b.ticks_processed ||
      a.placement_failures != b.placement_failures) {
    return false;
  }
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!records_identical(a.records[i], b.records[i])) return false;
  }
  return a.daily_bills == b.daily_bills && a.power_curve == b.power_curve &&
         a.utilization_curve == b.utilization_curve;
}

}  // namespace esched::run
