#include "run/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "obs/tracer.hpp"
#include "run/thread_pool.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

/// Warn (on stderr, once per distinct value) that ESCHED_JOBS was set but
/// unusable. Silence here cost real debugging time: a typo'd value simply
/// fell back to hardware_concurrency and sweeps "mysteriously" used the
/// wrong parallelism.
void warn_malformed_jobs_env(const char* value) {
  static std::mutex mutex;
  static std::string last_warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (last_warned == value) return;
  last_warned = value;
  std::fprintf(stderr,
               "esched: ignoring malformed ESCHED_JOBS=\"%s\" (want a "
               "positive integer); using hardware concurrency\n",
               value);
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TaskOutcome {
  sim::SimResult result;
  double seconds = 0.0;
};

TaskOutcome execute(const SimJob& job) {
  const auto start = Clock::now();
  std::unique_ptr<core::SchedulingPolicy> policy = job.make_policy();
  ESCHED_REQUIRE(policy != nullptr, "SimJob factory returned null policy");
  TaskOutcome out;
  out.result = sim::simulate(*job.trace, *job.pricing, *policy, job.config);
  out.seconds = seconds_since(start);
  return out;
}

}  // namespace

SweepRunner::SweepRunner(std::size_t jobs)
    : jobs_(jobs != 0 ? jobs : default_jobs()) {}

std::size_t SweepRunner::default_jobs() {
  if (const char* env = std::getenv("ESCHED_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
    warn_malformed_jobs_env(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::vector<sim::SimResult> SweepRunner::run(
    const std::vector<SimJob>& sweep) {
  for (const SimJob& job : sweep) {
    ESCHED_REQUIRE(job.trace != nullptr, "SimJob without a trace");
    ESCHED_REQUIRE(job.pricing != nullptr, "SimJob without a tariff");
    ESCHED_REQUIRE(static_cast<bool>(job.make_policy),
                   "SimJob without a policy factory");
  }

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(jobs_, sweep.size()));
  stats_ = SweepStats{};
  stats_.tasks = sweep.size();
  stats_.threads = workers;
  stats_.worker_busy_seconds.assign(workers, 0.0);
  const auto wall_start = Clock::now();

  // Progress state shared by the workers; the mutex serializes callback
  // invocations (the documented contract of ProgressCallback).
  std::mutex progress_mutex;
  std::size_t completed = 0;

  // One task: trace span around the cell, busy-time attribution to the
  // executing worker, then the progress callback. Worker slots are
  // disjoint per thread (the inline path owns slot 0), so the busy-time
  // writes need no lock; future::get / thread join publish them.
  const auto run_task = [&](const SimJob& job, std::size_t index) {
    std::string span_name;
    if (tracer_ != nullptr) {
      span_name =
          "task:" + (job.label.empty() ? std::to_string(index) : job.label);
    }
    obs::SpanGuard span(tracer_, std::move(span_name), "sweep");
    TaskOutcome out = execute(job);
    std::size_t slot = ThreadPool::current_index();
    if (slot >= workers) slot = 0;
    stats_.worker_busy_seconds[slot] += out.seconds;
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++completed;
      SweepProgress progress;
      progress.done = completed;
      progress.total = sweep.size();
      progress.elapsed_seconds = seconds_since(wall_start);
      progress.eta_seconds =
          progress.elapsed_seconds /
          static_cast<double>(completed) *
          static_cast<double>(sweep.size() - completed);
      progress_(progress);
    }
    return out;
  };

  // Settle-all-then-propagate: every submitted task runs to completion
  // (or to its own exception) before the first exception — whether it
  // came from the task itself or from a throwing progress callback — is
  // rethrown in submission order. Abandoning in-flight tasks on the
  // first failure would leave the pool half-drained and make "which
  // cells actually ran" depend on scheduling; settling first keeps
  // failure behaviour deterministic and deadlock-free.
  std::exception_ptr first_error;
  std::vector<TaskOutcome> outcomes;
  outcomes.reserve(sweep.size());
  if (workers == 1) {
    // Inline serial execution: the reference the determinism test holds
    // the threaded path to, and free of pool overhead for --jobs 1.
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      try {
        outcomes.push_back(run_task(sweep[i], i));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        outcomes.emplace_back();
      }
    }
  } else {
    ThreadPool pool(workers);
    std::vector<std::future<TaskOutcome>> futures;
    futures.reserve(sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SimJob& job = sweep[i];
      futures.push_back(
          pool.submit([&run_task, &job, i] { return run_task(job, i); }));
    }
    // Collect in submission order; future::get rethrows task exceptions.
    // Every future is drained even after a failure so the pool is fully
    // settled before the first exception surfaces.
    for (std::future<TaskOutcome>& f : futures) {
      try {
        outcomes.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        outcomes.emplace_back();
      }
    }
  }

  stats_.wall_seconds = seconds_since(wall_start);
  std::vector<sim::SimResult> results;
  results.reserve(outcomes.size());
  if (!outcomes.empty()) {
    stats_.task_min_seconds = outcomes.front().seconds;
    stats_.task_max_seconds = outcomes.front().seconds;
  }
  for (TaskOutcome& out : outcomes) {
    stats_.cpu_seconds += out.seconds;
    stats_.task_min_seconds = std::min(stats_.task_min_seconds, out.seconds);
    stats_.task_max_seconds = std::max(stats_.task_max_seconds, out.seconds);
    results.push_back(std::move(out.result));
  }
  if (!outcomes.empty()) {
    stats_.task_mean_seconds =
        stats_.cpu_seconds / static_cast<double>(outcomes.size());
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::shared_ptr<const trace::Trace> borrow(const trace::Trace& trace) {
  return {std::shared_ptr<const void>(), &trace};
}

std::shared_ptr<const power::PricingModel> borrow(
    const power::PricingModel& pricing) {
  return {std::shared_ptr<const void>(), &pricing};
}

namespace {

bool records_identical(const sim::JobRecord& a, const sim::JobRecord& b) {
  return a.id == b.id && a.submit == b.submit && a.start == b.start &&
         a.finish == b.finish && a.nodes == b.nodes &&
         a.power_per_node == b.power_per_node && a.user == b.user;
}

}  // namespace

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.policy_name != b.policy_name || a.trace_name != b.trace_name ||
      a.system_nodes != b.system_nodes ||
      a.horizon_begin != b.horizon_begin || a.horizon_end != b.horizon_end) {
    return false;
  }
  if (a.total_bill != b.total_bill || a.bill_on_peak != b.bill_on_peak ||
      a.bill_off_peak != b.bill_off_peak ||
      a.total_energy != b.total_energy ||
      a.energy_on_peak != b.energy_on_peak ||
      a.energy_off_peak != b.energy_off_peak ||
      a.it_energy != b.it_energy) {
    return false;
  }
  if (a.scheduling_passes != b.scheduling_passes ||
      a.ticks_processed != b.ticks_processed ||
      a.placement_failures != b.placement_failures) {
    return false;
  }
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!records_identical(a.records[i], b.records[i])) return false;
  }
  return a.daily_bills == b.daily_bills && a.power_curve == b.power_curve &&
         a.utilization_curve == b.utilization_curve;
}

}  // namespace esched::run
