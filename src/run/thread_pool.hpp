// A fixed-size thread pool for the experiment runner (run/sweep.hpp).
//
// Deliberately minimal — no work stealing, no priorities: sweep tasks are
// coarse (whole simulations, milliseconds to seconds each), so a single
// mutex-protected FIFO queue is nowhere near contention. Tasks are
// submitted as callables; submit() returns a std::future carrying the
// task's result or its exception, so worker threads never die on a throw.
//
// Lifecycle: workers start in the constructor and run until shutdown()
// (or the destructor, which calls it). Shutdown is *graceful*: work queued
// before the call is drained before the workers exit; only submission of
// new work is refused.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace esched::run {

/// Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `threads` workers (must be >= 1).
  explicit ThreadPool(std::size_t threads);

  /// Graceful shutdown (drains queued work), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Number of tasks executed to completion (or to an exception) so far.
  std::size_t tasks_run() const;

  /// Sentinel for "the calling thread is not a pool worker".
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// 0-based index of the calling thread within the pool that spawned it,
  /// or `npos` on any other thread. Lets per-worker accounting (sweep
  /// busy fractions, trace track ids) attribute work without plumbing an
  /// index through every task signature.
  static std::size_t current_index();

  /// Queue `fn` for execution; the future resolves with its return value
  /// or rethrows whatever it threw. Throws esched::Error after shutdown().
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable callables and
    // std::packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Stop accepting work, finish everything already queued, join all
  /// workers. Idempotent.
  void shutdown();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t tasks_run_ = 0;
  bool accepting_ = true;
};

}  // namespace esched::run
