#include "run/fault.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace esched::run {

namespace {

/// splitmix64 — tiny, well-mixed, and stable across platforms; the draw
/// must never depend on libc rand or hardware.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan::Action FaultPlan::decide(std::uint32_t task_id,
                                    std::uint32_t attempt) const {
  if (!any()) return Action::kNone;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(task_id) << 32) | attempt;
  const std::uint64_t h = splitmix64(seed ^ key);
  // 53 mantissa bits -> uniform in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double band = crash;
  if (u < band) return Action::kCrash;
  if (u < (band += hang)) return Action::kHang;
  if (u < (band += garbage)) return Action::kGarbage;
  if (u < (band += net_drop)) return Action::kNetDrop;
  if (u < (band += net_slow)) return Action::kNetSlow;
  if (u < (band += net_garbage)) return Action::kNetGarbage;
  return Action::kNone;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    ESCHED_REQUIRE(colon != std::string::npos,
                   "ESCHED_FAULT token \"" + token +
                       "\" is not key:value");
    const std::string key = token.substr(0, colon);
    const std::string value = token.substr(colon + 1);
    char* end = nullptr;
    if (key == "seed") {
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      ESCHED_REQUIRE(end != value.c_str() && *end == '\0',
                     "ESCHED_FAULT seed \"" + value +
                         "\" is not an integer");
      plan.seed = parsed;
      continue;
    }
    const double p = std::strtod(value.c_str(), &end);
    ESCHED_REQUIRE(end != value.c_str() && *end == '\0',
                   "ESCHED_FAULT " + key + " value \"" + value +
                       "\" is not a number");
    if (key == "netslow_seconds") {
      ESCHED_REQUIRE(p >= 0.0, "ESCHED_FAULT netslow_seconds " + value +
                                   " must be >= 0");
      plan.net_slow_seconds = p;
      continue;
    }
    ESCHED_REQUIRE(p >= 0.0 && p <= 1.0,
                   "ESCHED_FAULT " + key + " probability " + value +
                       " outside [0, 1]");
    if (key == "crash") {
      plan.crash = p;
    } else if (key == "hang") {
      plan.hang = p;
    } else if (key == "garbage") {
      plan.garbage = p;
    } else if (key == "netdrop") {
      plan.net_drop = p;
    } else if (key == "netslow") {
      plan.net_slow = p;
    } else if (key == "netgarbage") {
      plan.net_garbage = p;
    } else {
      throw Error("ESCHED_FAULT unknown key \"" + key +
                  "\" (known: crash, hang, garbage, netdrop, netslow, "
                  "netgarbage, netslow_seconds, seed)");
    }
  }
  ESCHED_REQUIRE(plan.crash + plan.hang + plan.garbage + plan.net_drop +
                         plan.net_slow + plan.net_garbage <=
                     1.0,
                 "ESCHED_FAULT probabilities sum above 1");
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("ESCHED_FAULT");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  return parse(env);
}

}  // namespace esched::run
