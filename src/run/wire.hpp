// The length-prefixed, versioned wire protocol between the sweep
// supervisor (run/proc.hpp) and esched-worker processes.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic       0x45534a31 ("ESJ1")
//        4     2  version     kVersion — readers reject anything else
//        6     1  type        FrameType
//        7     1  reserved    must be 0
//        8     4  task_id     supervisor-assigned cell index
//       12     4  attempt     0-based retry counter (fault determinism
//                             keys on (task_id, attempt))
//       16     4  payload_size  bytes following the header
//       20     4  payload_crc   CRC-32 (IEEE) of the payload bytes
//       24     …  payload
//
// The header is validated field by field (magic, version, reserved byte,
// size bound) before the payload is read, and the payload again by CRC —
// a supervisor can therefore classify "worker died mid-write" (short
// read), "worker wrote garbage" (bad magic/length/CRC), and "worker
// answered" without trusting the stream.
//
// Payload encodings are fixed-width little-endian; doubles travel as
// their IEEE-754 bit patterns (std::bit_cast), never through text — the
// round trip of both JobSpec and SimResult is *exact*, pinned by
// results_identical in wire_test. Strings and vectors are u32
// length-prefixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "run/spec.hpp"
#include "sim/result.hpp"

namespace esched::run::wire {

inline constexpr std::uint32_t kMagic = 0x45534a31u;  // "ESJ1"
inline constexpr std::uint16_t kVersion = 1;
/// Frames beyond this are rejected as corruption (a SimResult for a
/// multi-year trace is ~10 MB; 256 MB is far above any legitimate frame).
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

/// Size of the fixed frame header in bytes.
inline constexpr std::size_t kHeaderSize = 24;

enum class FrameType : std::uint8_t {
  kJob = 1,     ///< supervisor -> worker: payload is a JobSpec
  kResult = 2,  ///< worker -> supervisor: payload is a SimResult
  kError = 3,   ///< worker -> supervisor: payload is an error string;
                ///< deterministic failure, the supervisor fails fast
  // The TCP transport (src/net) carries these same frames over stream
  // sockets and adds the session frames below. Pipe peers (esched-worker)
  // never see them; the header codec accepts them so both transports
  // share one frame grammar.
  kHello = 4,    ///< coordinator -> agentd: handshake (net/protocol.hpp)
  kWelcome = 5,  ///< agentd -> coordinator: handshake accept + slot count
  kPing = 6,     ///< coordinator -> agentd: heartbeat (task_id = sequence)
  kPong = 7,     ///< agentd -> coordinator: heartbeat echo
  kFail = 8,     ///< agentd -> coordinator: *transient* failure of the
                 ///< named (task, attempt) — worker death at the agent;
                 ///< payload is a reason string, the coordinator requeues
};

/// Decoded frame header.
struct FrameHeader {
  FrameType type = FrameType::kJob;
  std::uint32_t task_id = 0;
  std::uint32_t attempt = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian byte sink for payload encoding.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader; throws esched::Error ("wire: …")
/// on any truncation, so a short or corrupted payload can never decode
/// into a plausible-looking value.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless the payload was consumed exactly — trailing bytes mean
  /// the two sides disagree about the encoding.
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Encode a complete frame (header + payload).
std::vector<std::uint8_t> encode_frame(FrameType type, std::uint32_t task_id,
                                       std::uint32_t attempt,
                                       const std::vector<std::uint8_t>& payload);

/// Decode and validate the fixed header from `bytes` (which must hold at
/// least kHeaderSize bytes). Throws esched::Error on bad magic, version,
/// reserved byte, unknown type or oversized payload. The payload CRC is
/// *not* checked here — call verify_payload once the payload has arrived.
FrameHeader decode_header(const std::uint8_t* bytes);

/// True when `payload` matches the header's size and CRC.
bool verify_payload(const FrameHeader& header, const std::uint8_t* payload);

/// JobSpec payload codec. Throws esched::Error if the spec carries a
/// facility model (pointers cannot cross the wire); the tracer pointer is
/// dropped silently (tracing never changes results).
std::vector<std::uint8_t> encode_job(const JobSpec& spec);
JobSpec decode_job(const std::vector<std::uint8_t>& payload);

/// SimResult payload codec; exact (bit-identical) round trip.
std::vector<std::uint8_t> encode_result(const sim::SimResult& result);
sim::SimResult decode_result(const std::vector<std::uint8_t>& payload);

/// Error-string payload codec (FrameType::kError).
std::vector<std::uint8_t> encode_error(const std::string& message);
std::string decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace esched::run::wire
